// Command owlclass classifies an OWL ontology in parallel and prints its
// taxonomy, statistics, or per-cycle trace.
//
//	owlclass [flags] ontology.(obo|ofn|owl)
//	owlclass -profile EMAP#EMAP -workers 8 -stats
//
// With -profile, a synthetic corpus from the paper's Tables IV/V is
// generated instead of reading a file. The command is a thin front end
// over the parowl Engine/Ontology handles — the same object surface the
// owld daemon serves over HTTP.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"parowl"
)

var (
	workers  = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	cycles   = flag.Int("cycles", 2, "random-division cycles")
	seed     = flag.Int64("seed", 1, "shuffle / generation seed")
	mode     = flag.String("mode", "optimized", "optimized | basic")
	sched    = flag.String("sched", "roundrobin", "roundrobin | worksharing | workstealing | async")
	plugin   = flag.String("reasoner", "auto", "auto | tableau | tableau-mm | el")
	profile  = flag.String("profile", "", "generate this Table IV/V profile instead of reading a file")
	scale    = flag.Int("scale", 1, "shrink the generated profile by this factor")
	stats    = flag.Bool("stats", false, "print test statistics instead of the taxonomy")
	trace    = flag.Bool("trace", false, "print the per-cycle trace")
	loads    = flag.Bool("loads", false, "print the per-worker load and steal-count summary (paper Sec. V-C)")
	dot      = flag.Bool("dot", false, "print the taxonomy in Graphviz DOT format")
	summary  = flag.Bool("summary", false, "print a one-line taxonomy summary")
	told     = flag.Bool("told", false, "answer told subsumptions without reasoner calls")
	adaptive = flag.Bool("adaptive", false, "stop random-division cycles adaptively")
	prepass  = flag.Bool("prepass", false, "EL pre-saturation: seed known subsumptions from the EL fragment before testing")
	mfilter  = flag.Bool("modelfilter", false, "consult the plug-in's pseudo-model merge filter before each subs? dispatch")
	timeout  = flag.Duration("timeout", 0, "abort classification after this duration (0 = none)")

	testTimeout = flag.Duration("test-timeout", 0, "budget per sat?/subs? test; expired tests are retried then recorded as undecided (0 = none)")
	testRetries = flag.Int("test-retries", 0, "escalating retries per timed-out test (each doubles the budget)")

	query      = flag.String("query", "", "answer taxonomy queries from the compiled kernel, e.g. 'subsumes:A,B;ancestors:C;lca:A,B' (ops: subsumes, ancestors, descendants, equivalents, lca, depth)")
	kernelFile = flag.String("kernel", "", "persist the compiled query kernel at this file: adopted when present (bad frames fall back to recompilation), written after compilation otherwise")

	checkpoint         = flag.String("checkpoint", "", "periodically snapshot classification state to this file (atomic rename)")
	checkpointInterval = flag.Duration("checkpoint-interval", time.Second, "minimum time between checkpoint snapshots (0 = every phase boundary)")
	resume             = flag.String("resume", "", "restore classification state from this checkpoint file; an invalid snapshot falls back to a clean run")
	cache              = flag.Bool("cache", false, "memoize plug-in answers; with -checkpoint, settled answers are carried in snapshots")
	chaos              = flag.String("chaos", "", "inject reasoner faults, e.g. err=0.01,panic=0.005,hang=0.002,budget=0.01,slow=2ms,seed=7 (testing only)")
	moduleOf           = flag.String("module", "", "extract the ⊥-locality module for this comma-separated concept list before classifying")
	metrics            = flag.Bool("metrics", false, "print the ontology metrics row and exit")
	baseline           = flag.String("baseline", "", "also run a baseline and compare: brute | traversal")

	cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile = flag.String("memprofile", "", "write an allocation profile to this file on exit")
)

func main() {
	flag.Parse()
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "owlclass:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "owlclass:", err)
			os.Exit(1)
		}
	}
	err := run()
	if *cpuprofile != "" {
		pprof.StopCPUProfile() // before any os.Exit, which skips defers
	}
	if *memprofile != "" {
		f, merr := os.Create(*memprofile)
		if merr == nil {
			runtime.GC() // flush allocation stats so the profile is current
			merr = pprof.WriteHeapProfile(f)
			f.Close()
		}
		if merr != nil {
			fmt.Fprintln(os.Stderr, "owlclass: memprofile:", merr)
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "owlclass:", err)
		os.Exit(1)
	}
}

func run() error {
	eng := parowl.NewEngine()
	ont, err := load(eng)
	if err != nil {
		return err
	}
	if *moduleOf != "" {
		full := ont.TBox()
		ont, err = ont.ExtractModule(strings.Split(*moduleOf, ","))
		if err != nil {
			return err
		}
		m := ont.TBox()
		fmt.Fprintf(os.Stderr, "module: %d of %d concepts, %d of %d axioms\n",
			m.NumNamed(), full.NumNamed(), len(m.Axioms()), len(full.Axioms()))
	}
	tbox := ont.TBox()
	if *metrics {
		fmt.Println(ont.Metrics())
		return nil
	}
	opts := parowl.Options{
		Workers:            *workers,
		RandomCycles:       *cycles,
		Seed:               *seed,
		CollectTrace:       *trace || *loads,
		UseToldSubsumers:   *told,
		AdaptiveCycles:     *adaptive,
		ELPrepass:          *prepass,
		ModelFilter:        *mfilter,
		TestTimeout:        *testTimeout,
		TestRetries:        *testRetries,
		Checkpoint:         *checkpoint,
		CheckpointInterval: *checkpointInterval,
		ResumeFrom:         *resume,
	}
	// A saved kernel file, when present, replaces post-run compilation:
	// the classifier skips CompileKernel and the frame is adopted below.
	// Otherwise -query/-kernel ask the classifier to compile one (which
	// also rides along in -checkpoint snapshots).
	adoptKernel := false
	if *kernelFile != "" {
		if _, statErr := os.Stat(*kernelFile); statErr == nil {
			adoptKernel = true
		}
	}
	opts.CompileKernel = (*query != "" || *kernelFile != "") && !adoptKernel
	switch *mode {
	case "optimized":
		opts.Mode = parowl.ModeOptimized
	case "basic":
		opts.Mode = parowl.ModeBasic
	default:
		return fmt.Errorf("unknown -mode %q", *mode)
	}
	opts.Scheduling, err = parowl.ParseScheduling(*sched)
	if err != nil {
		return err
	}
	switch *plugin {
	case "auto": // nil: ClassifyWith falls back to the Engine's selection
	case "tableau":
		opts.Reasoner = parowl.NewTableauReasoner(tbox)
	case "tableau-mm":
		opts.Reasoner = parowl.NewTableauReasonerMM(tbox)
	case "el":
		r, err := parowl.NewELReasoner(tbox)
		if err != nil {
			return err
		}
		opts.Reasoner = r
	default:
		return fmt.Errorf("unknown -reasoner %q", *plugin)
	}
	if *cache {
		// A cached plug-in memoizes settled answers; with -checkpoint they
		// also ride along in snapshots so resumed runs skip re-proving
		// them. Opt-in: the classifier's own P/K machinery already avoids
		// duplicate tests within a run, so for a single uncheckpointed run
		// the memo is pure overhead.
		if opts.Reasoner == nil {
			opts.Reasoner = parowl.NewAutoReasoner(tbox)
		}
		opts.Reasoner = parowl.NewCachedReasoner(opts.Reasoner)
	}
	if *chaos != "" {
		copts, err := parowl.ParseChaos(*chaos)
		if err != nil {
			return err
		}
		if opts.Reasoner == nil {
			opts.Reasoner = parowl.NewAutoReasoner(tbox)
		}
		fmt.Fprintf(os.Stderr, "owlclass: WARNING: chaos fault injection active (%s)\n", *chaos)
		opts.Reasoner = parowl.NewChaosReasoner(opts.Reasoner, copts)
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	start := time.Now()
	res, err := ont.ClassifyWith(ctx, opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if res.Resumed {
		fmt.Fprintf(os.Stderr, "owlclass: resumed from checkpoint %s\n", *resume)
	}
	if res.ResumeError != nil {
		fmt.Fprintf(os.Stderr, "owlclass: WARNING: checkpoint not resumable, classified from scratch: %v\n", res.ResumeError)
	}
	if res.CheckpointError != nil {
		fmt.Fprintf(os.Stderr, "owlclass: WARNING: checkpoint writes failed: %v\n", res.CheckpointError)
	}
	if n := len(res.Undecided); n > 0 {
		fmt.Fprintf(os.Stderr, "owlclass: WARNING: %d test(s) undecided (budget %v, %d retries); "+
			"the taxonomy is sound but may be missing subsumptions\n", n, *testTimeout, *testRetries)
		if res.Stats.TimedOut > 0 {
			fmt.Fprintf(os.Stderr, "owlclass: WARNING: %d test(s) exceeded the per-test time budget\n", res.Stats.TimedOut)
		}
		if res.Stats.NodeBudget > 0 {
			fmt.Fprintf(os.Stderr, "owlclass: WARNING: %d test(s) exhausted the reasoner's node budget\n", res.Stats.NodeBudget)
		}
		if res.Stats.BranchBudget > 0 {
			fmt.Fprintf(os.Stderr, "owlclass: WARNING: %d test(s) exhausted the reasoner's branch budget\n", res.Stats.BranchBudget)
		}
		if res.Stats.Recovered > 0 {
			fmt.Fprintf(os.Stderr, "owlclass: WARNING: %d reasoner panic(s) recovered\n", res.Stats.Recovered)
		}
		for _, u := range res.Undecided {
			fmt.Fprintf(os.Stderr, "  undecided: %v\n", u)
		}
	}

	if res.KernelError != nil {
		fmt.Fprintf(os.Stderr, "owlclass: WARNING: checkpointed kernel unusable, recompiled: %v\n", res.KernelError)
	}
	if adoptKernel {
		if k, kerr := parowl.ReadKernelFile(*kernelFile); kerr != nil {
			fmt.Fprintf(os.Stderr, "owlclass: WARNING: saved kernel unreadable, recompiling: %v\n", kerr)
		} else if aerr := res.Taxonomy.AdoptKernel(k); aerr != nil {
			fmt.Fprintf(os.Stderr, "owlclass: WARNING: saved kernel does not match this ontology, recompiling: %v\n", aerr)
		} else {
			fmt.Fprintf(os.Stderr, "owlclass: query kernel adopted from %s\n", *kernelFile)
		}
	}
	if *query != "" || *kernelFile != "" {
		k := res.Taxonomy.CompileKernel(0) // no-op when adopted or already compiled
		if *kernelFile != "" && !adoptKernel {
			if werr := parowl.WriteKernelFile(*kernelFile, k); werr != nil {
				fmt.Fprintf(os.Stderr, "owlclass: WARNING: kernel not saved: %v\n", werr)
			} else {
				fmt.Fprintf(os.Stderr, "owlclass: query kernel saved to %s (%d classes, %d closure bytes)\n",
					*kernelFile, k.NumClasses(), k.MemoryFootprint())
			}
		}
	}

	if *baseline != "" {
		var want *parowl.Taxonomy
		switch *baseline {
		case "brute":
			want, err = ont.ClassifySequential(ctx, opts.Reasoner)
		case "traversal":
			want, err = ont.ClassifyEnhancedTraversal(ctx, opts.Reasoner)
		default:
			err = fmt.Errorf("unknown -baseline %q", *baseline)
		}
		if err != nil {
			return err
		}
		if res.Taxonomy.Equal(want) {
			fmt.Fprintf(os.Stderr, "baseline %s: taxonomies identical\n", *baseline)
		} else {
			return fmt.Errorf("baseline %s: taxonomies differ", *baseline)
		}
	}

	switch {
	case *query != "":
		snap, serr := ont.Snapshot()
		if serr != nil {
			return serr
		}
		lines, qerr := snap.EvalSpec(ctx, *query)
		if qerr != nil {
			return qerr
		}
		for _, line := range lines {
			fmt.Println(line)
		}
	case *trace:
		fmt.Print(res.Trace.String())
	case *dot:
		fmt.Print(res.Taxonomy.DOT())
	case *summary:
		fmt.Println(res.Taxonomy.Summarize())
	case *stats:
		fmt.Printf("ontology:    %s (%d concepts)\n", tbox.Name, tbox.NumNamed())
		fmt.Printf("elapsed:     %v\n", elapsed)
		fmt.Printf("classes:     %d taxonomy nodes\n", res.Taxonomy.NumClasses())
		fmt.Printf("subs tests:  %d\n", res.Stats.SubsTests)
		fmt.Printf("sat tests:   %d\n", res.Stats.SatTests)
		fmt.Printf("pruned:      %d pairs resolved without testing\n", res.Stats.Pruned)
		if res.Stats.ToldHits > 0 {
			fmt.Printf("told hits:   %d tests answered from asserted axioms\n", res.Stats.ToldHits)
		}
		if res.Stats.PreSeeded > 0 {
			fmt.Printf("preseeded:   %d tests resolved by the EL prepass\n", res.Stats.PreSeeded)
		}
		if res.Stats.FilterHits > 0 {
			fmt.Printf("filter hits: %d subs? dispatches skipped by pseudo-model merging\n", res.Stats.FilterHits)
		}
		if res.Stats.TimedOut > 0 {
			fmt.Printf("timed out:   %d tests abandoned after exhausting their budget\n", res.Stats.TimedOut)
		}
		if res.Stats.NodeBudget > 0 {
			fmt.Printf("node budget: %d tests abandoned on reasoner node-budget exhaustion\n", res.Stats.NodeBudget)
		}
		if res.Stats.BranchBudget > 0 {
			fmt.Printf("branch budget: %d tests abandoned on reasoner branch-budget exhaustion\n", res.Stats.BranchBudget)
		}
		if res.Stats.Recovered > 0 {
			fmt.Printf("recovered:   %d plug-in panics converted to undecided tests\n", res.Stats.Recovered)
		}
		if res.Stats.Steals > 0 {
			fmt.Printf("steals:      %d tasks ran on a different worker than queued\n", res.Stats.Steals)
		}
		if len(res.Undecided) > 0 {
			fmt.Printf("undecided:   %d tests (taxonomy sound but possibly incomplete)\n", len(res.Undecided))
		}
	default:
		if !*loads {
			fmt.Print(res.Taxonomy.Render())
		}
	}
	if *loads {
		fmt.Printf("scheduling: %v, workers: %d, elapsed: %v\n", opts.Scheduling, res.Trace.Workers, elapsed)
		fmt.Print(res.Trace.LoadSummary())
	}
	return nil
}

// load builds the Ontology handle from -profile or the file argument.
func load(eng *parowl.Engine) (*parowl.Ontology, error) {
	if *profile != "" {
		p, ok := parowl.ProfileByName(*profile)
		if !ok {
			return nil, fmt.Errorf("unknown profile %q (see cmd/benchfig for the 14 names)", *profile)
		}
		if *scale > 1 {
			p = parowl.MiniProfile(p, *scale)
		}
		return eng.Generate(p, *seed)
	}
	if flag.NArg() != 1 {
		return nil, fmt.Errorf("usage: owlclass [flags] ontology.(obo|ofn|owl) — or -profile NAME")
	}
	return eng.LoadFile(flag.Arg(0))
}
