// Command taxdiff classifies two ontology files and reports the semantic
// differences between their taxonomies: added/removed entailed
// subsumptions, unsatisfiability changes, and vocabulary changes. It is
// the regression check ontology maintainers run before releasing an
// edited ontology.
//
//	taxdiff old.obo new.obo
//
// Exit status: 0 when identical, 1 when different, 2 on error — including
// when either classification leaves tests undecided under the per-test
// budget, because a diff over an incomplete taxonomy proves nothing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"parowl"
)

var (
	workers     = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
	testTimeout = flag.Duration("test-timeout", 0, "budget per sat?/subs? test (0 = none)")
	testRetries = flag.Int("test-retries", 0, "escalating retries per timed-out test")
)

func main() {
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: taxdiff [flags] old.(obo|ofn|omn) new.(obo|ofn|omn)")
		os.Exit(2)
	}
	diff, err := run(flag.Arg(0), flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "taxdiff:", err)
		os.Exit(2)
	}
	fmt.Print(diff.String())
	if !diff.Empty() {
		os.Exit(1)
	}
}

func run(oldPath, newPath string) (*parowl.TaxonomyDiff, error) {
	eng := parowl.NewEngine(parowl.WithOptions(parowl.Options{
		Workers:     *workers,
		TestTimeout: *testTimeout,
		TestRetries: *testRetries,
	}))
	classifyFile := func(path string) (*parowl.Taxonomy, error) {
		ont, err := eng.LoadFile(path)
		if err != nil {
			return nil, err
		}
		res, err := ont.Classify(context.Background())
		if err != nil {
			return nil, fmt.Errorf("classifying %s: %w", path, err)
		}
		if n := len(res.Undecided); n > 0 {
			// An undecided test can hide a real difference, so comparing
			// the incomplete taxonomies could report "identical" for
			// ontologies that differ. Refuse to diff; list the pairs so the
			// operator can rerun them with a larger budget.
			fmt.Fprintf(os.Stderr, "taxdiff: %s: %d test(s) undecided under the %v budget; "+
				"refusing to diff an incomplete taxonomy\n", path, n, *testTimeout)
			for _, u := range res.Undecided {
				fmt.Fprintf(os.Stderr, "  undecided: %v\n", u)
			}
			return nil, fmt.Errorf("%s: %d undecided test(s); raise -test-timeout/-test-retries and retry", path, n)
		}
		return res.Taxonomy, nil
	}
	oldTax, err := classifyFile(oldPath)
	if err != nil {
		return nil, err
	}
	newTax, err := classifyFile(newPath)
	if err != nil {
		return nil, err
	}
	return parowl.CompareTaxonomies(oldTax, newTax), nil
}
