package parowl_test

// Subprocess kill-and-resume driver: owlclass is SIGKILLed mid-run — the
// OS-level analogue of a machine crash, with no chance for in-process
// cleanup — and restarted with -resume until a run survives. The final
// taxonomy must be byte-identical to an uninterrupted run's.

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// buildCmd compiles one ./cmd binary into dir.
func buildCmd(t *testing.T, dir, name string) string {
	t.Helper()
	bin := filepath.Join(dir, name)
	build := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building %s: %v\n%s", name, err, out)
	}
	return bin
}

func TestCLIKillAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess kill loop is slow")
	}
	dir := t.TempDir()
	owlclass := buildCmd(t, dir, "owlclass")
	ontogen := buildCmd(t, dir, "ontogen")

	onto := filepath.Join(dir, "corpus.obo")
	if out, err := exec.Command(ontogen, "-profile", "WBbt.obo", "-scale", "100", "-seed", "3", "-o", onto).CombinedOutput(); err != nil {
		t.Fatalf("ontogen: %v\n%s", err, out)
	}

	ref, err := exec.Command(owlclass, "-workers", "4", "-cycles", "6", onto).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Chaos slow-down stretches the run so kills land mid-classification;
	// no fault rates, so interrupted runs stay deterministic. Extra random
	// cycles give the checkpointer more phase boundaries to snapshot at.
	ck := filepath.Join(dir, "run.ck")
	common := []string{"-workers", "4", "-cycles", "6", "-checkpoint", ck, "-checkpoint-interval", "0", "-chaos", "slow=1ms,seed=1"}

	kills := 0
	var final []byte
	for attempt := 0; ; attempt++ {
		if attempt > 25 {
			t.Fatalf("no run survived after %d attempts (%d kills)", attempt, kills)
		}
		args := append([]string{}, common...)
		if _, err := os.Stat(ck); err == nil {
			args = append(args, "-resume", ck)
		}
		args = append(args, onto)

		var stdout, stderr bytes.Buffer
		cmd := exec.Command(owlclass, args...)
		cmd.Stdout = &stdout
		cmd.Stderr = &stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()

		// Exponentially escalating kill delay: early attempts die fast
		// (often before the first snapshot), later ones run long enough to
		// finish; resumed runs also have less work left each time.
		delay := 30 * time.Millisecond
		for i := 0; i < attempt; i++ {
			delay = delay * 135 / 100
		}
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("attempt %d: owlclass failed: %v\n%s", attempt, err, stderr.String())
			}
			// The chaos-active warning is expected; checkpoint trouble is not.
			for _, banned := range []string{"not resumable", "checkpoint writes failed", "undecided"} {
				if strings.Contains(stderr.String(), banned) {
					t.Fatalf("attempt %d: unexpected warning:\n%s", attempt, stderr.String())
				}
			}
			final = stdout.Bytes()
		case <-time.After(delay):
			if err := cmd.Process.Signal(syscall.SIGKILL); err == nil {
				kills++
			}
			<-done // reap; exit error expected after SIGKILL
			continue
		}
		break
	}

	if kills == 0 {
		t.Fatal("no run was actually killed; the driver proved nothing")
	}
	if !bytes.Equal(final, ref) {
		t.Errorf("taxonomy after %d kills differs from uninterrupted run:\n got:\n%s\nwant:\n%s",
			kills, final, ref)
	}
	t.Logf("converged after %d kill(s)", kills)
}

// TestCLIResumeRejectsCorruptSnapshot: a corrupted checkpoint must warn
// and fall back to a clean run with the correct taxonomy, not fail or
// silently produce a wrong one.
func TestCLIResumeRejectsCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()
	owlclass := buildCmd(t, dir, "owlclass")

	onto := filepath.Join(dir, "mini.obo")
	src := "[Term]\nid: A\n\n[Term]\nid: B\nis_a: A\n\n[Term]\nid: C\nis_a: B\n"
	if err := os.WriteFile(onto, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	ref, err := exec.Command(owlclass, onto).Output()
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	bad := filepath.Join(dir, "bad.ck")
	if err := os.WriteFile(bad, []byte("definitely not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(owlclass, "-resume", bad, onto)
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		t.Fatalf("clean-run fallback failed: %v\n%s", err, stderr.String())
	}
	if !strings.Contains(stderr.String(), "WARNING") {
		t.Errorf("no warning about the rejected snapshot:\n%s", stderr.String())
	}
	if !bytes.Equal(stdout.Bytes(), ref) {
		t.Errorf("fallback taxonomy differs:\n got:\n%s\nwant:\n%s", stdout.String(), ref)
	}
}
