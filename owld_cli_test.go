package parowl_test

// Subprocess drain-and-resume driver for the owld daemon: a classify job
// is stretched with chaos slow-down, the daemon is SIGTERMed
// mid-classification, and a fresh daemon over the same checkpoint
// directory must resume the job into a taxonomy byte-identical to
// `owlclass` run on the same corpus — the service-level analogue of
// crash_cli_test.go's kill loop.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// startOwld launches an owld subprocess and returns its base URL once the
// ready file appears.
func startOwld(t *testing.T, bin string, args ...string) (*exec.Cmd, string) {
	t.Helper()
	ready := filepath.Join(t.TempDir(), "ready")
	args = append([]string{"-addr", "127.0.0.1:0", "-ready-file", ready}, args...)
	cmd := exec.Command(bin, args...)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting owld: %v", err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if b, err := os.ReadFile(ready); err == nil && len(b) > 0 {
			return cmd, strings.TrimSpace(string(b))
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatal("owld never wrote its ready file")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func postOntology(t *testing.T, base, id, path string) {
	t.Helper()
	body, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/ontologies?format=obo&id="+id, "text/plain", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		b, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, b)
	}
}

func ontologyStatus(t *testing.T, base, id string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/ontologies/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	var info map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("status decode: %v", err)
	}
	return info
}

func TestOwldSigtermDrainAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess daemon test is slow")
	}
	dir := t.TempDir()
	owld := buildCmd(t, dir, "owld")
	owlclass := buildCmd(t, dir, "owlclass")
	ontogen := buildCmd(t, dir, "ontogen")

	onto := filepath.Join(dir, "corpus.obo")
	if out, err := exec.Command(ontogen, "-profile", "WBbt.obo", "-scale", "100", "-seed", "3", "-o", onto).CombinedOutput(); err != nil {
		t.Fatalf("ontogen: %v\n%s", err, out)
	}

	refTaxonomy, err := exec.Command(owlclass, "-workers", "4", onto).Output()
	if err != nil {
		t.Fatalf("owlclass reference run: %v", err)
	}

	// Daemon 1: chaos slow-down stretches the classification so SIGTERM
	// lands mid-run, after at least one phase-boundary checkpoint.
	ckdir := filepath.Join(dir, "ck")
	cmd1, base1 := startOwld(t, owld,
		"-checkpoint-dir", ckdir, "-checkpoint-interval", "0",
		"-workers", "4", "-cycles", "6", "-drain-grace", "100ms",
		"-chaos", "slow=1ms,seed=1")
	postOntology(t, base1, "corpus", onto)

	ckfile := filepath.Join(ckdir, "corpus.ck")
	deadline := time.Now().Add(60 * time.Second)
	for {
		if _, err := os.Stat(ckfile); err == nil {
			break
		}
		if time.Now().After(deadline) {
			cmd1.Process.Kill()
			t.Fatal("no checkpoint appeared")
		}
		time.Sleep(10 * time.Millisecond)
	}

	if err := cmd1.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	exited := make(chan error, 1)
	go func() { exited <- cmd1.Wait() }()
	select {
	case err := <-exited:
		if err != nil {
			t.Fatalf("owld exited non-zero after SIGTERM: %v", err)
		}
	case <-time.After(60 * time.Second):
		cmd1.Process.Kill()
		t.Fatal("owld did not exit after SIGTERM")
	}
	if _, err := os.Stat(ckfile); err != nil {
		t.Fatalf("drain removed the resumable checkpoint: %v", err)
	}

	// Daemon 2 over the same checkpoint dir: the resubmitted job resumes
	// and the served taxonomy matches the owlclass reference bytes.
	cmd2, base2 := startOwld(t, owld, "-checkpoint-dir", ckdir, "-workers", "4")
	defer func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		cmd2.Wait()
	}()
	postOntology(t, base2, "corpus", onto)
	deadline = time.Now().Add(120 * time.Second)
	var info map[string]any
	for {
		info = ontologyStatus(t, base2, "corpus")
		if info["status"] == "classified" {
			break
		}
		if info["status"] == "failed" || time.Now().After(deadline) {
			t.Fatalf("resumed classification stuck: %v", info)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if resumed, _ := info["resumed"].(bool); !resumed {
		t.Error("daemon 2 classified from scratch instead of resuming the drained checkpoint")
	}

	resp, err := http.Get(base2 + "/ontologies/corpus/taxonomy")
	if err != nil {
		t.Fatal(err)
	}
	served, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(served) != string(refTaxonomy) {
		t.Errorf("served taxonomy differs from owlclass output (%d vs %d bytes)", len(served), len(refTaxonomy))
	}

	// Query answers are byte-identical to `owlclass -query` on the same
	// corpus: both front ends share one evaluator.
	names := oboIDs(t, onto, 2)
	spec := fmt.Sprintf("subsumes:%s,%s;ancestors:%s;descendants:%s;equivalents:%s;lca:%s,%s;depth:%s",
		names[0], names[1], names[0], names[1], names[0], names[0], names[1], names[1])
	cliOut, err := exec.Command(owlclass, "-workers", "4", "-query", spec, onto).Output()
	if err != nil {
		t.Fatalf("owlclass -query: %v", err)
	}
	resp, err = http.Get(base2 + "/ontologies/corpus/query?q=" + url.QueryEscape(spec))
	if err != nil {
		t.Fatal(err)
	}
	httpOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query: HTTP %d: %s", resp.StatusCode, httpOut)
	}
	if string(httpOut) != string(cliOut) {
		t.Errorf("daemon query answers differ from owlclass -query:\n got %q\nwant %q", httpOut, cliOut)
	}
}

// oboIDs returns the first n term ids of an OBO file.
func oboIDs(t *testing.T, path string, n int) []string {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, line := range strings.Split(string(b), "\n") {
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimSpace(line[len("id: "):]))
			if len(ids) == n {
				return ids
			}
		}
	}
	t.Fatalf("only %d ids in %s, want %d", len(ids), path, n)
	return nil
}
