#!/bin/sh
# bench_sched.sh — scheduler-policy benchmark with commit-over-commit
# comparison, also available as `make bench-sched`.
#
# Runs `benchfig -exp sched` (all four pool policies — round-robin,
# work-sharing, work-stealing, async — on a skewed corpus with real
# per-test durations),
# rotating the previous BENCH_sched.json/.bench to *.prev first. The
# corpus comes from scripts/corpus.sh so it is the byte-identical file
# `make chaos` tortures. When benchstat is installed and a previous run
# exists, the benchstat-format twins are compared; otherwise the raw rows
# are printed side by side. Extra arguments are passed to benchfig
# (e.g. `scripts/bench_sched.sh -schedworkers 4`).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_sched.json
BENCH=BENCH_sched.bench
for f in "$OUT" "$BENCH"; do
    if [ -f "$f" ]; then
        mv "$f" "$f.prev"
    fi
done

CORPUS=$(sh scripts/corpus.sh)
go run ./cmd/benchfig -exp sched -schedout "$OUT" -schedcorpus "$CORPUS" "$@"

if [ -f "$BENCH.prev" ]; then
    if command -v benchstat >/dev/null 2>&1; then
        echo "== benchstat vs previous run"
        benchstat "$BENCH.prev" "$BENCH"
    else
        echo "== benchstat not installed; previous vs current:"
        echo "-- $BENCH.prev"
        cat "$BENCH.prev"
        echo "-- $BENCH"
        cat "$BENCH"
    fi
fi
