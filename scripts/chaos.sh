#!/bin/sh
# chaos.sh — the crash-safety torture loop, also available as `make chaos`:
# the full fault-injection and kill-and-resume suites, in-process (under the
# race detector) and via subprocess SIGKILL of the real owlclass binary.
# Slower than verify.sh's short chaos step; run it when touching the
# checkpoint format, the resume path, or the worker pool's barriers.
set -eu
cd "$(dirname "$0")/.."

echo "== in-process kill-and-resume + chaos suites (-race)"
go test -race -count=1 -v -run 'TestKillAndResume|TestChaos|TestResumeRejects|TestSnapshotDecodeFuzz|TestCheckpoint' ./internal/core/
echo "== reasoner decorator suites (-race): chaos, cache port, single flight"
go test -race -count=1 -run 'TestChaos|TestCachePort|TestCached' ./internal/reasoner/
echo "== subprocess SIGKILL driver (owlclass -checkpoint/-resume)"
go test -count=1 -v -run 'TestCLIKillAndResume|TestCLIResumeRejectsCorruptSnapshot' .
echo "chaos: OK"
