#!/bin/sh
# chaos.sh — the crash-safety torture loop, also available as `make chaos`:
# the full fault-injection and kill-and-resume suites, in-process (under the
# race detector) and via subprocess SIGKILL of the real owlclass binary.
# Slower than verify.sh's short chaos step; run it when touching the
# checkpoint format, the resume path, or the worker pool's barriers.
set -eu
cd "$(dirname "$0")/.."

echo "== in-process kill-and-resume + chaos suites (-race)"
go test -race -count=1 -v -run 'TestKillAndResume|TestChaos|TestResumeRejects|TestSnapshotDecodeFuzz|TestCheckpoint' ./internal/core/
echo "== reasoner decorator suites (-race): chaos, cache port, single flight"
go test -race -count=1 -run 'TestChaos|TestCachePort|TestCached' ./internal/reasoner/
echo "== subprocess SIGKILL driver (owlclass -checkpoint/-resume)"
go test -count=1 -v -run 'TestCLIKillAndResume|TestCLIResumeRejectsCorruptSnapshot' .
echo "== owlclass cross-policy smoke on the shared corpus (scripts/corpus.sh)"
CORPUS=$(sh scripts/corpus.sh)
for SCHED in roundrobin worksharing workstealing; do
    go run ./cmd/owlclass -sched "$SCHED" -workers 4 -prepass "$CORPUS" \
        >".corpus/taxonomy.$SCHED"
done
cmp .corpus/taxonomy.roundrobin .corpus/taxonomy.worksharing
cmp .corpus/taxonomy.roundrobin .corpus/taxonomy.workstealing
echo "chaos: OK"
