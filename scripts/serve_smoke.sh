#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of the owld daemon, also
# available as `make serve-smoke`: build owld/owlclass/ontogen, start the
# daemon on a random port, classify two generated corpora through the
# HTTP API, and assert the daemon's query answers and rendered taxonomy
# are byte-identical to `owlclass` run directly on the same files.
set -eu
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
OWLD_PID=""
cleanup() {
    if [ -n "$OWLD_PID" ]; then
        kill -TERM "$OWLD_PID" 2>/dev/null || true
        wait "$OWLD_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building owld, owlclass, ontogen"
go build -o "$WORK/owld" ./cmd/owld
go build -o "$WORK/owlclass" ./cmd/owlclass
go build -o "$WORK/ontogen" ./cmd/ontogen

echo "== generating two corpora"
"$WORK/ontogen" -profile WBbt.obo -scale 80 -seed 11 -o "$WORK/anatomy.obo"
"$WORK/ontogen" -profile obo.PREVIOUS -scale 20 -seed 12 -o "$WORK/previous.obo"

echo "== starting owld"
"$WORK/owld" -addr 127.0.0.1:0 -ready-file "$WORK/ready" \
    -checkpoint-dir "$WORK/ck" >"$WORK/owld.log" 2>&1 &
OWLD_PID=$!
for _ in $(seq 1 100); do
    [ -s "$WORK/ready" ] && break
    kill -0 "$OWLD_PID" 2>/dev/null || { cat "$WORK/owld.log"; echo "serve-smoke: owld died at startup"; exit 1; }
    sleep 0.1
done
BASE=$(cat "$WORK/ready")
echo "   owld at $BASE"

submit_and_wait() {
    # submit_and_wait <id> <file>
    code=$(curl -s -o "$WORK/submit.json" -w '%{http_code}' \
        --data-binary @"$2" "$BASE/ontologies?format=obo&id=$1")
    [ "$code" = 202 ] || { cat "$WORK/submit.json"; echo "serve-smoke: submit $1: HTTP $code"; exit 1; }
    for _ in $(seq 1 600); do
        status=$(curl -s "$BASE/ontologies/$1" | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')
        case "$status" in
        classified) return 0 ;;
        failed) curl -s "$BASE/ontologies/$1"; echo; echo "serve-smoke: $1 failed"; exit 1 ;;
        esac
        sleep 0.1
    done
    echo "serve-smoke: $1 never classified"
    exit 1
}

# first_ids <file> <n>: the first n OBO term ids, space-separated.
first_ids() {
    grep '^id: ' "$1" | head -n "$2" | sed 's/^id: //' | tr '\n' ' '
}

check_corpus() {
    # check_corpus <id> <file>
    id=$1
    file=$2
    submit_and_wait "$id" "$file"

    set -- $(first_ids "$file" 2)
    A=$1
    B=$2
    SPEC="subsumes:$A,$B;ancestors:$A;descendants:$B;equivalents:$A;lca:$A,$B;depth:$B"

    "$WORK/owlclass" -query "$SPEC" "$file" >"$WORK/$id.cli" 2>/dev/null
    curl -sG --data-urlencode "q=$SPEC" "$BASE/ontologies/$id/query" >"$WORK/$id.http"
    if ! cmp -s "$WORK/$id.cli" "$WORK/$id.http"; then
        echo "serve-smoke: $id: daemon query answers differ from owlclass -query:"
        diff "$WORK/$id.cli" "$WORK/$id.http" || true
        exit 1
    fi

    "$WORK/owlclass" "$file" >"$WORK/$id.render" 2>/dev/null
    curl -s "$BASE/ontologies/$id/taxonomy" >"$WORK/$id.tax"
    if ! cmp -s "$WORK/$id.render" "$WORK/$id.tax"; then
        echo "serve-smoke: $id: daemon taxonomy differs from owlclass output"
        exit 1
    fi
    echo "   $id: query + taxonomy byte-identical to owlclass"
}

echo "== classify and cross-check both corpora"
check_corpus anatomy "$WORK/anatomy.obo"
check_corpus previous "$WORK/previous.obo"

echo "== graceful shutdown"
kill -TERM "$OWLD_PID"
wait "$OWLD_PID" || { cat "$WORK/owld.log"; echo "serve-smoke: owld exited non-zero on SIGTERM"; exit 1; }
OWLD_PID=""

echo "serve-smoke: OK"
