#!/bin/sh
# bench_query.sh — taxonomy query-path benchmark with commit-over-commit
# comparison, also available as `make bench-query`.
#
# Runs `benchfig -exp query` (bit-matrix kernel vs pointer-DAG lookups on
# full-size Table IV corpora, identical-answer check included), rotating
# the previous BENCH_query.json/.bench to *.prev first. When benchstat is
# installed and a previous run exists, the benchstat-format twins are
# compared; otherwise the raw rows are printed side by side. Extra
# arguments are passed to benchfig (e.g.
# `scripts/bench_query.sh -queryscale 8` for a quick run).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_query.json
BENCH=BENCH_query.bench
for f in "$OUT" "$BENCH"; do
    if [ -f "$f" ]; then
        mv "$f" "$f.prev"
    fi
done

go run ./cmd/benchfig -exp query -queryout "$OUT" "$@"

if [ -f "$BENCH.prev" ]; then
    if command -v benchstat >/dev/null 2>&1; then
        echo "== benchstat vs previous run"
        benchstat "$BENCH.prev" "$BENCH"
    else
        echo "== benchstat not installed; previous vs current:"
        echo "-- $BENCH.prev"
        cat "$BENCH.prev"
        echo "-- $BENCH"
        cat "$BENCH"
    fi
fi
