#!/bin/sh
# serve_chaos.sh — durable-registry torture drill for the owld daemon,
# also available as `make serve-chaos`: classify corpora, SIGKILL the
# daemon (no drain), restart it under `-chaos err=1` — a reasoner that
# fails every call, so serving again PROVES re-adoption ran zero
# reclassification — and finally restart with a resident-memory budget
# small enough to force eviction, checking demand reloads still answer
# byte-identical to `owlclass`.
set -eu
cd "$(dirname "$0")/.."

WORK=$(mktemp -d)
OWLD_PID=""
cleanup() {
    if [ -n "$OWLD_PID" ]; then
        kill -KILL "$OWLD_PID" 2>/dev/null || true
        wait "$OWLD_PID" 2>/dev/null || true
    fi
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== building owld, owlclass, ontogen"
go build -o "$WORK/owld" ./cmd/owld
go build -o "$WORK/owlclass" ./cmd/owlclass
go build -o "$WORK/ontogen" ./cmd/ontogen

echo "== generating two corpora"
"$WORK/ontogen" -profile WBbt.obo -scale 80 -seed 21 -o "$WORK/one.obo"
"$WORK/ontogen" -profile WBbt.obo -scale 80 -seed 22 -o "$WORK/two.obo"

CKDIR="$WORK/ck"

start_owld() {
    # start_owld [extra flags...] — sets OWLD_PID and BASE.
    rm -f "$WORK/ready"
    "$WORK/owld" -addr 127.0.0.1:0 -ready-file "$WORK/ready" \
        -checkpoint-dir "$CKDIR" "$@" >>"$WORK/owld.log" 2>&1 &
    OWLD_PID=$!
    for _ in $(seq 1 100); do
        [ -s "$WORK/ready" ] && break
        kill -0 "$OWLD_PID" 2>/dev/null || { cat "$WORK/owld.log"; echo "serve-chaos: owld died at startup"; exit 1; }
        sleep 0.1
    done
    BASE=$(cat "$WORK/ready")
    # Wait for readiness: 503 while boot re-adoption is in progress.
    for _ in $(seq 1 600); do
        code=$(curl -s -o /dev/null -w '%{http_code}' "$BASE/readyz")
        [ "$code" = 200 ] && return 0
        sleep 0.1
    done
    echo "serve-chaos: /readyz never turned 200"
    exit 1
}

kill_owld() {
    kill -KILL "$OWLD_PID" 2>/dev/null || true
    wait "$OWLD_PID" 2>/dev/null || true
    OWLD_PID=""
}

submit_and_wait() {
    # submit_and_wait <id> <file>
    code=$(curl -s -o "$WORK/submit.json" -w '%{http_code}' \
        --data-binary @"$2" "$BASE/ontologies?format=obo&id=$1")
    [ "$code" = 202 ] || { cat "$WORK/submit.json"; echo "serve-chaos: submit $1: HTTP $code"; exit 1; }
    for _ in $(seq 1 600); do
        status=$(curl -s "$BASE/ontologies/$1" | sed -n 's/.*"status":"\([a-z]*\)".*/\1/p')
        case "$status" in
        classified) return 0 ;;
        failed) curl -s "$BASE/ontologies/$1"; echo; echo "serve-chaos: $1 failed"; exit 1 ;;
        esac
        sleep 0.1
    done
    echo "serve-chaos: $1 never classified"
    exit 1
}

entry_field() {
    # entry_field <id> <field>: a scalar field (bare or quoted) from the
    # status JSON.
    curl -s "$BASE/ontologies/$1" | sed -n "s/.*\"$2\":\"\{0,1\}\([a-z0-9]*\)\"\{0,1\}[,}].*/\1/p"
}

check_answers() {
    # check_answers <id> <file> <label>
    set -- "$1" "$2" "$3" $(grep '^id: ' "$2" | head -n 2 | sed 's/^id: //')
    SPEC="subsumes:$4,$5;ancestors:$4;descendants:$5;lca:$4,$5;depth:$5"
    "$WORK/owlclass" -query "$SPEC" "$2" >"$WORK/$1.cli" 2>/dev/null
    curl -sG --data-urlencode "q=$SPEC" "$BASE/ontologies/$1/query" >"$WORK/$1.http"
    if ! cmp -s "$WORK/$1.cli" "$WORK/$1.http"; then
        echo "serve-chaos: $1 ($3): daemon answers differ from owlclass -query:"
        diff "$WORK/$1.cli" "$WORK/$1.http" || true
        exit 1
    fi
    echo "   $1: answers byte-identical to owlclass ($3)"
}

echo "== phase 1: classify both corpora, then SIGKILL the daemon"
start_owld -workers 4
submit_and_wait one "$WORK/one.obo"
submit_and_wait two "$WORK/two.obo"
check_answers one "$WORK/one.obo" "before kill"
# Wait until the manifest has both entries durably classified before the kill.
for _ in $(seq 1 100); do
    n=$(grep -c '"status": "classified"' "$CKDIR/registry.json" 2>/dev/null || true)
    [ "${n:-0}" = 2 ] && break
    sleep 0.1
done
kill_owld
echo "   killed (no drain)"

echo "== phase 2: restart under -chaos err=1 — re-adoption must run zero reasoner calls"
start_owld -workers 4 -chaos err=1,seed=1
for id in one two; do
    status=$(entry_field "$id" readopted)
    [ "$status" = true ] || { curl -s "$BASE/ontologies/$id"; echo; echo "serve-chaos: $id not readopted after SIGKILL restart"; exit 1; }
done
check_answers one "$WORK/one.obo" "after kill + chaos restart"
check_answers two "$WORK/two.obo" "after kill + chaos restart"
kill_owld

echo "== phase 3: restart with a tight memory budget — eviction + demand reload"
# One classified kernel at this scale is well over 4 KiB, so a 4 KiB
# budget forces everything but the working set out of memory.
start_owld -workers 4 -max-resident-bytes 4096
evictions=$(curl -s "$BASE/healthz" | sed -n 's/.*"evictions":\([0-9]*\).*/\1/p')
[ "${evictions:-0}" -ge 1 ] || { curl -s "$BASE/healthz"; echo; echo "serve-chaos: no evictions under a 4 KiB budget"; exit 1; }
for id in one two; do
    status=$(entry_field "$id" status)
    [ "$status" = classified ] || { echo "serve-chaos: evicted $id lists as $status, want classified"; exit 1; }
done
check_answers one "$WORK/one.obo" "after eviction, demand reload"
check_answers two "$WORK/two.obo" "after eviction, demand reload"
reloads=$(curl -s "$BASE/healthz" | sed -n 's/.*"reloads":\([0-9]*\).*/\1/p')
[ "${reloads:-0}" -ge 1 ] || { curl -s "$BASE/healthz"; echo; echo "serve-chaos: queries never paid a demand reload"; exit 1; }

echo "== graceful shutdown"
kill -TERM "$OWLD_PID"
wait "$OWLD_PID" || { cat "$WORK/owld.log"; echo "serve-chaos: owld exited non-zero on SIGTERM"; exit 1; }
OWLD_PID=""

echo "serve-chaos: OK"
