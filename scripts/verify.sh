#!/bin/sh
# verify.sh — the repository's pre-merge gate, also available as `make verify`:
# full build, vet, every test, and the race detector over the packages with
# concurrent hot paths (classifier core, tableau arenas, caching layer).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race (core, tableau, reasoner)"
go test -race ./internal/core/... ./internal/tableau/... ./internal/reasoner/...
echo "verify: OK"
