#!/bin/sh
# verify.sh — the repository's pre-merge gate, also available as `make verify`:
# full build, vet, every test, and the race detector over the packages with
# concurrent hot paths (classifier core, tableau arenas, caching layer).
set -eu
cd "$(dirname "$0")/.."

echo "== go build ./..."
go build ./...
echo "== go vet ./..."
go vet ./...
echo "== go test ./..."
go test ./...
echo "== go test -race (core, tableau, reasoner, el, taxonomy, bitset)"
go test -race ./internal/core/... ./internal/tableau/... ./internal/reasoner/... ./internal/el/... ./internal/taxonomy/... ./internal/bitset/...
echo "== cheap-first pipeline equivalence suite (-race)"
go test -race -count=1 -run 'TestQuickPipelineEquivalence|TestPipelineEquivalenceOntogen|TestPipelineReducesCalls|TestPrepassFragmentUnsatConcept' ./internal/core/
echo "== crash-safety suite: kill-and-resume + chaos soundness (-race)"
go test -race -count=1 -run 'TestKillAndResumeEquivalence|TestChaosPanicSoundness|TestResumeRejectsBadSnapshots' ./internal/core/
echo "== scheduler suite: cross-policy equivalence + stealing-deque properties (-race)"
go test -race -count=1 -run 'TestQuickCrossPolicyEquivalence|TestWorkStealingActuallySteals|TestKillAndResumeWorkStealing|TestSchedulingValidation|TestDequeOwnerThiefProperty|TestDequeLastElementRace|TestWorkerQueueResetLateThief|TestBarrierAssertsDequesEmpty|TestPoolStealingBalancesSkew' ./internal/core/
echo "== async suite: barrier-free equivalence + epoch checkpoints (-race)"
go test -race -count=1 -run 'TestKillAndResumeAsync|TestAsyncQuiescesLessThanBarrierMode|TestCheckpointLegacyFileWithoutKernelSection|TestSnapshotKernelDecodeFuzz' ./internal/core/

echo "== query-kernel equivalence suite: kernel vs DAG answers + checkpoint frame corruption (-race)"
go test -race -count=1 -run 'TestKernelEquivalenceRandom|TestKernelEquivalenceOntogen|TestKernelRoundTrip|TestKernelFileRoundTrip|TestKernelDecodeCorruption|TestAdoptKernelRejectsMismatch' ./internal/taxonomy/
go test -race -count=1 -run 'TestKernelCheckpointRoundTrip|TestCheckpointKernelCorruptFrameFallsBack|TestCheckpointKernelMismatchRejected|TestCheckpointLegacyFileWithoutKernelSection|TestSnapshotKernelDecodeFuzz' ./internal/core/

echo "== owld serving suite: registry + admission + drain (-race)"
go test -race -count=1 ./internal/server/

echo "== owld end-to-end smoke: daemon answers byte-identical to owlclass"
sh scripts/serve_smoke.sh

echo "== owld durable-registry drill: SIGKILL + chaos re-adoption + eviction"
sh scripts/serve_chaos.sh

# Static analysis beyond vet, when the tools are installed. staticcheck
# failures are hard errors; govulncheck needs the network for its vuln DB,
# so an offline/transient failure only warns.
if command -v staticcheck >/dev/null 2>&1; then
    echo "== staticcheck ./..."
    staticcheck ./...
else
    echo "== staticcheck not installed; skipping"
fi
if command -v govulncheck >/dev/null 2>&1; then
    echo "== govulncheck ./..."
    govulncheck ./... || echo "verify: WARNING: govulncheck failed (network or DB unavailable); not fatal"
else
    echo "== govulncheck not installed; skipping"
fi
echo "verify: OK"
