#!/bin/sh
# bench_async.sh — barrier-free scheduler benchmark with commit-over-commit
# comparison, also available as `make bench-async`.
#
# Runs `benchfig -exp async` (barrier-free async vs work-stealing at 8
# workers on a skewed corpus with real per-test durations), rotating the
# previous BENCH_async.json/.bench to *.prev first. When benchstat is
# installed and a previous run exists, the benchstat-format twins are
# compared; otherwise the raw rows are printed side by side. Extra
# arguments are passed to benchfig (e.g. `scripts/bench_async.sh
# -asyncworkers 4`).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_async.json
BENCH=BENCH_async.bench
for f in "$OUT" "$BENCH"; do
    if [ -f "$f" ]; then
        mv "$f" "$f.prev"
    fi
done

go run ./cmd/benchfig -exp async -asyncout "$OUT" "$@"

if [ -f "$BENCH.prev" ]; then
    if command -v benchstat >/dev/null 2>&1; then
        echo "== benchstat vs previous run"
        benchstat "$BENCH.prev" "$BENCH"
    else
        echo "== benchstat not installed; previous vs current:"
        echo "-- $BENCH.prev"
        cat "$BENCH.prev"
        echo "-- $BENCH"
        cat "$BENCH"
    fi
fi
