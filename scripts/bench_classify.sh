#!/bin/sh
# bench_classify.sh — end-to-end classification benchmark with
# commit-over-commit comparison, also available as `make bench-classify`.
#
# Runs `benchfig -exp classify` (real tableau reasoning, pipeline off vs
# on), rotating the previous BENCH_classify.json/.bench to *.prev first.
# When benchstat is installed and a previous run exists, the two
# benchstat-format twins are compared; otherwise the raw wall-time rows
# are printed side by side. Extra arguments are passed to benchfig
# (e.g. `scripts/bench_classify.sh -classifyscale 8`).
set -eu
cd "$(dirname "$0")/.."

OUT=BENCH_classify.json
BENCH=BENCH_classify.bench
for f in "$OUT" "$BENCH"; do
    if [ -f "$f" ]; then
        mv "$f" "$f.prev"
    fi
done

go run ./cmd/benchfig -exp classify -classifyout "$OUT" "$@"

if [ -f "$BENCH.prev" ]; then
    if command -v benchstat >/dev/null 2>&1; then
        echo "== benchstat vs previous run"
        benchstat "$BENCH.prev" "$BENCH"
    else
        echo "== benchstat not installed; previous vs current:"
        echo "-- $BENCH.prev"
        cat "$BENCH.prev"
        echo "-- $BENCH"
        cat "$BENCH"
    fi
fi
