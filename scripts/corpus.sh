#!/bin/sh
# corpus.sh — shared deterministic corpus generation for the driver
# scripts (`make bench-sched`, `make chaos`). Generates an ontology file
# with ontogen, caches it under .corpus/ keyed by the arguments, and
# prints its path on stdout:
#
#   scripts/corpus.sh [PROFILE] [SCALE] [SEED]
#
# PROFILE defaults to ncitations_functional (the moderate-QCR corpus the
# scheduler benchmark skews), SCALE to 12, SEED to 1. Because the cache
# key is (profile, scale, seed) and generation is seeded, every caller
# sees the byte-identical file — the chaos loop kills the same ontology
# the scheduler benchmark times.
set -eu
cd "$(dirname "$0")/.."

PROFILE=${1:-ncitations_functional}
SCALE=${2:-12}
SEED=${3:-1}

DIR=.corpus
# Profile names contain '#' and '.'; keep the cache key filesystem-safe.
KEY=$(printf '%s' "$PROFILE" | tr -c 'A-Za-z0-9_-' '_')
case "$PROFILE" in
*.obo | *EMAP* | *EHDA* | *CLEMAPA* | *lanogaster* | *MIRO* | *PREVIOUS*)
    EXT=obo ;;
*)
    EXT=ofn ;;
esac
OUT="$DIR/$KEY-s$SCALE-r$SEED.$EXT"

mkdir -p "$DIR"
if [ ! -f "$OUT" ]; then
    go run ./cmd/ontogen -profile "$PROFILE" -scale "$SCALE" -seed "$SEED" -o "$OUT" 1>&2
fi
echo "$OUT"
